// Serve-loop throughput: the table1-style replay that dominates every
// Tables 1-8 run, measured in isolation. Three sections:
//   * online: KArySplayNet::serve over the HPC trace for several arities
//     (exercises lca/distance + the full rotation engine),
//   * binary: the BinarySplayNet baseline over the same trace,
//   * static: run_trace_static over a fixed full tree (pure distance
//     queries; this is what the full/optimal rows of every table cost).
// Results (requests/second and total cost) are printed and, with
// --json <path>, written as a machine-readable record; the checked-in
// BENCH_serve_hot_path.json tracks this machine's before/after numbers
// for the flat-storage + depth-cache rewrite.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/binary_splaynet.hpp"
#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "stats/table.hpp"

namespace {

using namespace san;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string name;
  double seconds = 0;
  double req_per_sec = 0;
  Cost total_cost = 0;
};

template <typename ServeFn>
Row replay(const std::string& name, const Trace& trace, ServeFn&& serve) {
  const auto t0 = std::chrono::steady_clock::now();
  Cost total = 0;
  for (const Request& r : trace.requests) {
    const ServeResult s = serve(r.src, r.dst);
    total += s.routing_cost + s.rotations;
  }
  Row row;
  row.name = name;
  row.seconds = seconds_since(t0);
  row.req_per_sec = static_cast<double>(trace.size()) / row.seconds;
  row.total_cost = total;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);

  const int n = bench::node_count(WorkloadKind::kHpc);
  const std::size_t m = bench::trace_length();
  std::cout << "== serve() hot path: HPC replay, n=" << n << ", requests=" << m
            << " ==\n\n";
  Trace trace = gen_workload(WorkloadKind::kHpc, n, m, bench::bench_seed());

  std::vector<Row> rows;
  for (int k : {2, 3, 5, 10}) {
    KArySplayNet net = KArySplayNet::balanced(k, n);
    rows.push_back(replay("splaynet-k" + std::to_string(k), trace,
                          [&](NodeId u, NodeId v) { return net.serve(u, v); }));
  }
  {
    BinarySplayNet net(n);
    rows.push_back(replay("binary-splaynet", trace,
                          [&](NodeId u, NodeId v) { return net.serve(u, v); }));
  }
  for (int k : {2, 10}) {
    const KAryTree tree = full_kary_tree(k, n);
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult res = run_trace_static(tree, trace);
    Row row;
    row.name = "static-full-k" + std::to_string(k);
    row.seconds = seconds_since(t0);
    row.req_per_sec = static_cast<double>(m) / row.seconds;
    row.total_cost = res.total_cost();
    rows.push_back(row);
  }

  Table out({"network", "seconds", "req/s", "total cost"});
  for (const Row& r : rows)
    out.add_row({r.name, fixed_cell(r.seconds, 3),
                 std::to_string(static_cast<long long>(r.req_per_sec)),
                 std::to_string(r.total_cost)});
  out.print();

  std::ostringstream js;
  js << "{\n  \"bench\": \"serve_hot_path\",\n  \"n\": " << n
     << ",\n  \"requests\": " << m << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i)
    js << "    {\"name\": \"" << rows[i].name << "\", \"seconds\": "
       << rows[i].seconds << ", \"req_per_sec\": "
       << static_cast<long long>(rows[i].req_per_sec)
       << ", \"total_cost\": " << rows[i].total_cost << "}"
       << (i + 1 < rows.size() ? ",\n" : "\n");
  js << "  ]\n}\n";
  bench::write_json_result(js.str());
  return 0;
}
