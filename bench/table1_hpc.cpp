// Table 1: k-ary SplayNet on the HPC workload (DOE mini-apps substitute)
// against the static full k-ary tree and the optimal routing-based tree.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  san::bench::PaperKaryTable paper{
      "HPC",
      4798648,
      {"0.87x", "0.82x", "0.75x", "0.76x", "0.73x", "0.70x", "0.69x",
       "0.70x"},
      {"0.78x", "0.94x", "1.04x", "1.07x", "1.16x", "1.17x", "1.25x",
       "1.25x", "1.29x"},
      {"1.52x", "1.90x", "2.15x", "2.22x", "2.45x", "2.48x", "2.49x",
       "2.58x", "2.75x"},
  };
  san::bench::run_kary_table(san::WorkloadKind::kHpc, paper,
                             /*optimal_feasible=*/true);
  return 0;
}
