// Table 5: k-ary SplayNet on the synthetic workload with temporal
// complexity parameter 0.5.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  san::bench::PaperKaryTable paper{
      "Temporal 0.5",
      963150,
      {"0.83x", "0.76x", "0.72x", "0.70x", "0.69x", "0.69x", "0.67x",
       "0.64x"},
      {"0.69x", "0.80x", "0.86x", "0.91x", "0.97x", "0.98x", "1.03x",
       "1.06x", "1.10x"},
      {"1.21x", "1.49x", "1.64x", "1.76x", "1.87x", "1.91x", "2.04x",
       "2.12x", "2.15x"},
  };
  san::bench::run_kary_table(san::WorkloadKind::kTemporal05, paper,
                             /*optimal_feasible=*/true);
  return 0;
}
