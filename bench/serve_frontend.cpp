// Open-loop serving frontend: offered-load sweep — throughput ceiling and
// tail latency vs arrival rate.
//
// For each workload x sharding config, the bench first measures the
// saturation throughput (all-zero arrival schedule: the dispatcher is
// never the bottleneck), then offers Poisson load at fixed fractions of
// that ceiling plus one bursty (on-off, Pareto periods) point, and
// reports achieved rate and sojourn p50/p99/p999. The expected shape is
// the textbook open-loop curve: tails near-flat at low load, exploding as
// offered -> ceiling; bursty arrivals at half load already show the p999
// of Poisson near saturation.
//
// Workloads:
//   * zipf — stationary Facebook-like skew; the static map is already the
//     steady-state answer, rebalancing must not hurt the tail much.
//   * elephants-p4 — phase-change elephant pairs; the adaptive config
//     earns its keep by converting cross-shard traffic back to intra
//     after each phase flip, at the price of quiesce pauses in the tail.
// Configs: static sharding, and hotpair rebalancing (drift trigger).
// The checked-in BENCH_serve_frontend.json records this machine's
// numbers; --smoke shrinks everything to seconds-scale for CI.
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "sim/serve_frontend.hpp"
#include "stats/table.hpp"
#include "workload/arrival.hpp"
#include "workload/rebalance.hpp"

namespace {

using namespace san;

struct Row {
  std::string arrival;
  double load = 0.0;  // offered / saturation ceiling (0 = saturation row)
  double offered = 0.0;
  double achieved = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  Cost serve_cost = 0;
  Cost migrations = 0;
};

struct ConfigReport {
  std::string workload;
  std::string config;  // "static" | "hotpair"
  int n = 0;
  std::size_t requests = 0;
  double saturation_rate = 0.0;
  std::vector<Row> rows;  // rows[0] is the saturation run
};

Row run_point(const Trace& trace, int k, int S, const RebalanceConfig* cfg,
              ArrivalKind kind, double rate, double load) {
  ShardedNetwork net =
      ShardedNetwork::balanced(k, trace.n, S, ShardPartition::kHash);
  FrontendOptions opt;
  opt.rebalance = cfg;
  ServeFrontend frontend(net, opt);
  const auto arrivals = gen_arrival_times(
      kind, kind == ArrivalKind::kSaturation ? 0.0 : rate, trace.size(),
      bench::bench_seed());
  const FrontendResult r = frontend.run(trace, arrivals);
  Row row;
  row.arrival = arrival_kind_name(kind);
  row.load = load;
  row.offered = r.offered_rate;
  row.achieved = r.achieved_rate;
  row.p50_us = r.sim.latency.p50_us;
  row.p99_us = r.sim.latency.p99_us;
  row.p999_us = r.sim.latency.p999_us;
  row.max_us = r.sim.latency.max_us;
  row.serve_cost = r.sim.total_cost();
  row.migrations = r.sim.migrations;
  return row;
}

ConfigReport run_config(const std::string& workload, const std::string& config,
                        const Trace& trace, int k, int S,
                        const RebalanceConfig* cfg,
                        const std::vector<double>& loads) {
  ConfigReport rep;
  rep.workload = workload;
  rep.config = config;
  rep.n = trace.n;
  rep.requests = trace.size();

  // The throughput ceiling of this config, measured not assumed.
  rep.rows.push_back(
      run_point(trace, k, S, cfg, ArrivalKind::kSaturation, 0.0, 0.0));
  rep.saturation_rate = rep.rows[0].achieved;

  for (double load : loads)
    rep.rows.push_back(run_point(trace, k, S, cfg, ArrivalKind::kPoisson,
                                 load * rep.saturation_rate, load));
  // One bursty point at half load: self-similar arrivals stress the tail
  // at rates a Poisson stream absorbs without queueing.
  const double bursty_load = 0.5;
  rep.rows.push_back(run_point(trace, k, S, cfg, ArrivalKind::kBursty,
                               bursty_load * rep.saturation_rate,
                               bursty_load));
  return rep;
}

void print_report(const ConfigReport& rep) {
  std::cout << "-- " << rep.workload << " / " << rep.config
            << " (n=" << rep.n << ", requests=" << rep.requests
            << ", ceiling=" << static_cast<long long>(rep.saturation_rate)
            << " req/s) --\n";
  Table out({"arrival", "load", "offered req/s", "achieved req/s", "p50 us",
             "p99 us", "p999 us", "max us", "serve cost", "migr"});
  for (const Row& r : rep.rows)
    out.add_row({r.arrival, fixed_cell(r.load, 2),
                 std::to_string(static_cast<long long>(r.offered)),
                 std::to_string(static_cast<long long>(r.achieved)),
                 fixed_cell(r.p50_us, 1), fixed_cell(r.p99_us, 1),
                 fixed_cell(r.p999_us, 1), fixed_cell(r.max_us, 1),
                 std::to_string(r.serve_cost), std::to_string(r.migrations)});
  out.print();
  std::cout << "\n";
}

void append_json(std::ostringstream& js, const ConfigReport& rep, bool last) {
  js << "    {\n      \"workload\": \"" << rep.workload
     << "\",\n      \"config\": \"" << rep.config
     << "\",\n      \"n\": " << rep.n
     << ",\n      \"requests\": " << rep.requests
     << ",\n      \"saturation_req_per_sec\": "
     << static_cast<long long>(rep.saturation_rate)
     << ",\n      \"rows\": [\n";
  for (std::size_t i = 0; i < rep.rows.size(); ++i) {
    const Row& r = rep.rows[i];
    js << "        {\"arrival\": \"" << r.arrival << "\", \"load\": "
       << fixed_cell(r.load, 2) << ", \"offered_req_per_sec\": "
       << static_cast<long long>(r.offered) << ", \"achieved_req_per_sec\": "
       << static_cast<long long>(r.achieved) << ", \"p50_us\": "
       << fixed_cell(r.p50_us, 1) << ", \"p99_us\": "
       << fixed_cell(r.p99_us, 1) << ", \"p999_us\": "
       << fixed_cell(r.p999_us, 1) << ", \"max_us\": "
       << fixed_cell(r.max_us, 1) << ", \"serve_cost\": " << r.serve_cost
       << ", \"migrations\": " << r.migrations << "}"
       << (i + 1 < rep.rows.size() ? ",\n" : "\n");
  }
  js << "      ]\n    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);
  std::cout << "== serve frontend: open-loop offered-load sweep ==\n";
  std::cout << "hardware threads: " << resolve_threads(0) << "\n\n";

  // One dispatcher plus S shard workers share the host; more shards than
  // cores just measures oversubscription, so keep S small.
  const int k = 3;
  const int S = std::clamp(resolve_threads(0) - 1, 2, 4);
  const int n = bench::scaled(64, 512, 2048);
  const std::size_t m =
      bench::scaled<std::size_t>(4000, 100000, 400000);
  const std::uint64_t seed = bench::bench_seed();
  const std::vector<double> loads =
      bench::bench_cli().smoke ? std::vector<double>{0.5, 0.9}
                               : std::vector<double>{0.25, 0.5, 0.75, 0.9};

  RebalanceConfig hotpair;
  hotpair.policy = RebalancePolicy::kHotPair;
  hotpair.epoch_requests = std::max<std::size_t>(500, m / 20);
  hotpair.max_migrations = 64;

  struct WorkloadDef {
    std::string label;
    Trace trace;
  };
  std::vector<WorkloadDef> workloads;
  workloads.push_back({"zipf", gen_facebook(n, m, seed)});
  workloads.push_back({"elephants-p4", gen_phase_elephants(n, m, 4, seed)});

  std::vector<ConfigReport> reports;
  for (const WorkloadDef& w : workloads) {
    reports.push_back(
        run_config(w.label, "static", w.trace, k, S, nullptr, loads));
    reports.push_back(
        run_config(w.label, "hotpair", w.trace, k, S, &hotpair, loads));
  }
  for (const ConfigReport& rep : reports) print_report(rep);

  std::ostringstream js;
  js << "{\n  \"bench\": \"serve_frontend\",\n  \"shards\": " << S
     << ",\n  \"k\": " << k << ",\n  \"hardware_threads\": "
     << resolve_threads(0) << ",\n  \"epoch_requests\": "
     << hotpair.epoch_requests << ",\n  \"configs\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i)
    append_json(js, reports[i], i + 1 == reports.size());
  js << "  ]\n}\n";
  bench::write_json_result(js.str());
  return 0;
}
