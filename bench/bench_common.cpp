#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/executor.hpp"
#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "static_trees/optimal_dp.hpp"
#include "stats/table.hpp"
#include "workload/demand_matrix.hpp"
#include "workload/trace_stats.hpp"

namespace san::bench {
namespace {

std::string abs_cell(Cost v) { return std::to_string(v); }

}  // namespace

BenchCli& bench_cli() {
  static BenchCli cli;
  return cli;
}

void init_bench_cli(int argc, char** argv) {
  BenchCli& cli = bench_cli();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cli.smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      cli.json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 0 || v > 4096) {
        std::cerr << "--threads must be an integer in [0, 4096] "
                     "(0 = all hardware threads)\n";
        std::exit(2);
      }
      cli.threads = static_cast<int>(v);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--json <path>] [--threads <N>]\n";
      std::exit(2);
    }
  }
}

int bench_threads() { return bench_cli().threads; }

int bench_threads_resolved() { return resolve_threads(bench_cli().threads); }

void write_json_result(const std::string& body) {
  const std::string& path = bench_cli().json_path;
  if (path.empty()) return;
  std::ofstream js(path);
  js << body;
  js.flush();  // surface write errors before the stream check, not in ~ofstream
  if (!js) {
    std::cerr << "failed to write " << path << "\n";
    std::exit(1);
  }
}

void run_kary_table(WorkloadKind kind, const PaperKaryTable& paper,
                    bool optimal_feasible) {
  const int n = node_count(kind);
  const std::size_t m = trace_length();
  std::cout << "== " << paper.workload << " workload: k-ary SplayNet vs "
            << "static full / optimal k-ary trees ==\n";
  std::cout << "n=" << n << " (paper: " << paper_node_count(kind)
            << "), requests=" << m << " (paper: 1000000)"
            << (full_scale() ? " [FULL SCALE]" : "") << "\n";

  const auto t0 = std::chrono::steady_clock::now();
  Trace trace = gen_workload(kind, n, m, bench_seed());
  const TraceStats st = compute_stats(trace);
  std::cout << "trace: repeat=" << fixed_cell(st.repeat_fraction) << ", "
            << "src entropy=" << fixed_cell(st.src_entropy, 2) << " bits, "
            << "distinct pairs=" << st.distinct_pairs << "\n\n";

  // Cost convention (paper Section 5): every routed hop and every rotation
  // costs one; static trees only pay routing.
  std::vector<Cost> splay_total(11, 0), full_total(11, 0), opt_total(11, 0);
  std::optional<DemandMatrix> demand;
  if (optimal_feasible) demand.emplace(DemandMatrix::from_trace(trace));

  for (int k = 2; k <= 10; ++k) {
    KArySplayNet net = KArySplayNet::balanced(k, n);
    SimResult online;
    for (const Request& r : trace.requests) {
      const ServeResult s = net.serve(r.src, r.dst);
      online.routing_cost += s.routing_cost;
      online.rotation_count += s.rotations;
      ++online.requests;
    }
    splay_total[static_cast<size_t>(k)] = online.total_cost();
    full_total[static_cast<size_t>(k)] =
        run_trace_static(full_kary_tree(k, n), trace).routing_cost;
    if (optimal_feasible) {
      OptimalTreeResult opt =
          optimal_routing_based_tree(k, *demand, bench_threads());
      opt_total[static_cast<size_t>(k)] =
          run_trace_static(opt.tree, trace).routing_cost;
    }
  }

  std::vector<std::string> header = {"row"};
  for (int k = 2; k <= 10; ++k) header.push_back(std::to_string(k));
  Table out(header);

  auto paper_cells = [&](const char* label, const std::string& first,
                         const std::vector<const char*>& vals,
                         size_t offset) {
    std::vector<std::string> row = {std::string(label) + " (paper)"};
    row.push_back(first);
    for (size_t i = offset; i < vals.size(); ++i)
      row.push_back(vals[i] == nullptr || *vals[i] == '\0' ? "-" : vals[i]);
    return row;
  };

  {
    std::vector<std::string> row = {"SplayNet"};
    row.push_back(abs_cell(splay_total[2]));
    for (int k = 3; k <= 10; ++k)
      row.push_back(ratio_cell(static_cast<double>(splay_total[k]),
                               static_cast<double>(splay_total[2])));
    out.add_row(row);
    out.add_row(paper_cells("SplayNet",
                            std::to_string(paper.splaynet_k2_total),
                            paper.splay_ratio, 0));
  }
  {
    std::vector<std::string> row = {"Full Tree"};
    for (int k = 2; k <= 10; ++k)
      row.push_back(ratio_cell(static_cast<double>(splay_total[k]),
                               static_cast<double>(full_total[k])));
    out.add_row(row);
    std::vector<std::string> prow = {"Full Tree (paper)"};
    for (const char* c : paper.full_ratio)
      prow.push_back(c == nullptr || *c == '\0' ? "-" : c);
    out.add_row(prow);
  }
  {
    std::vector<std::string> row = {"Optimal Tree"};
    for (int k = 2; k <= 10; ++k)
      row.push_back(optimal_feasible
                        ? ratio_cell(static_cast<double>(splay_total[k]),
                                     static_cast<double>(opt_total[k]))
                        : "-");
    out.add_row(row);
    std::vector<std::string> prow = {"Optimal Tree (paper)"};
    for (const char* c : paper.optimal_ratio)
      prow.push_back(c == nullptr || *c == '\0' ? "-" : c);
    out.add_row(prow);
  }
  out.print();
  const double dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  std::cout << "(" << fixed_cell(dt, 1) << "s)\n\n";
}

}  // namespace san::bench
