// Shard lifecycle at scale: what do splits, merges, replicas, and crash
// recovery cost as the fleet grows?
//
// Part 1 — lifecycle sweep: a drifting elephant workload runs once with a
// static fleet and once with the full lifecycle stack (watermark splits +
// merges + one read replica) for each starting fleet size. Reported: how
// many splits/merges fired, their relink cost, where the fleet size
// landed, and the grand-cost ratio against the static run.
//
// Part 2 — recovery sweep: three scripted kills per run (early, middle,
// late; different shards) against a 250 ms per-recovery SLO. The
// snapshot-restore rows rebuild the dead shard from its last barrier
// snapshot plus a trace-tail replay; the promotion rows keep every shard
// replicated so failover is a pointer swap plus top-tree rewire. Reported:
// replayed ops, recovery wall-clock (total and worst single), and the SLO
// verdict the CLI would print.
//
// The checked-in BENCH_lifecycle_scaling.json records this machine's
// numbers at n = 10^5 (the ISSUE 9 acceptance scale), S up to 16.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/rebalance.hpp"

namespace {

using namespace san;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr double kRecoverySloMs = 250.0;

struct LifecycleRow {
  int shards0 = 0;
  double seconds = 0;
  Cost grand_static = 0;     // same trace, no lifecycle
  Cost grand_lifecycle = 0;  // serve + migration + lifecycle
  double cost_ratio = 1.0;
  Cost splits = 0;
  Cost merges = 0;
  Cost lifecycle_cost = 0;
  Cost replica_reads = 0;
  int final_shards = 0;
};

struct RecoveryRow {
  std::string mode;  // "restore" or "promote"
  int shards = 0;
  double seconds = 0;
  Cost faults = 0;
  Cost promotions = 0;
  Cost replayed = 0;
  Cost recovery_cost = 0;
  double recovery_total_ms = 0;
  double recovery_max_ms = 0;
  bool slo_met = true;
};

LifecycleRow run_lifecycle_row(const Trace& trace, int k, int S,
                               std::size_t epoch) {
  LifecycleRow row;
  row.shards0 = S;
  {
    ShardedNetwork net =
        ShardedNetwork::balanced(k, trace.n, S, ShardPartition::kHash);
    ShardedRunOptions opt;
    opt.threads = bench::bench_threads();
    row.grand_static = run_trace_sharded(net, trace, opt).grand_total_cost();
  }
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kNone;  // isolate lifecycle from migrations
  cfg.epoch_requests = epoch;
  cfg.split_watermark = 1.5;
  cfg.merge_watermark = 0.5;
  cfg.max_shards = 32;
  cfg.min_shards = 2;
  cfg.replicas = 1;
  ShardedNetwork net =
      ShardedNetwork::balanced(k, trace.n, S, ShardPartition::kHash);
  ShardedRunOptions opt;
  opt.threads = bench::bench_threads();
  opt.rebalance = &cfg;
  const auto t0 = std::chrono::steady_clock::now();
  const SimResult res = run_trace_sharded(net, trace, opt);
  row.seconds = seconds_since(t0);
  row.grand_lifecycle = res.grand_total_cost();
  row.cost_ratio = static_cast<double>(row.grand_lifecycle) /
                   static_cast<double>(row.grand_static);
  row.splits = res.shard_splits;
  row.merges = res.shard_merges;
  row.lifecycle_cost = res.lifecycle_cost;
  row.replica_reads = res.replica_reads;
  row.final_shards = res.final_shards;
  return row;
}

RecoveryRow run_recovery_row(const Trace& trace, int k, int S,
                             std::size_t epoch, bool promote) {
  FaultPlan plan;
  const std::size_t m = trace.size();
  plan.kills = {{m / 4, 0}, {m / 2, S / 2}, {3 * m / 4, S - 1}};
  plan.recovery_slo_ms = kRecoverySloMs;

  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kNone;
  cfg.epoch_requests = epoch;
  // Promotion rows keep every shard replicated so each kill fails over;
  // restore rows have no replicas, forcing snapshot + tail replay.
  cfg.replicas = promote ? S : 0;

  ShardedNetwork net =
      ShardedNetwork::balanced(k, trace.n, S, ShardPartition::kHash);
  ShardedRunOptions opt;
  opt.threads = bench::bench_threads();
  if (promote) opt.rebalance = &cfg;
  opt.faults = &plan;
  RecoveryRow row;
  row.mode = promote ? "promote" : "restore";
  row.shards = S;
  const auto t0 = std::chrono::steady_clock::now();
  const SimResult res = run_trace_sharded(net, trace, opt);
  row.seconds = seconds_since(t0);
  row.faults = res.faults_injected;
  row.promotions = res.replica_promotions;
  row.replayed = res.recovery_replayed;
  row.recovery_cost = res.recovery_cost;
  row.recovery_total_ms = res.recovery_total_ms;
  row.recovery_max_ms = res.recovery_max_ms;
  row.slo_met = res.recovery_max_ms <= kRecoverySloMs;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);
  std::cout << "== lifecycle scaling: split/merge/replicate/recover ==\n";
  std::cout << "threads: " << bench::bench_threads_resolved() << " of "
            << resolve_threads(0) << " hardware\n\n";

  const int k = 3;
  const int n = bench::scaled(256, 100000, 100000);
  const std::size_t m = bench::trace_length();
  const std::uint64_t seed = bench::bench_seed();
  const std::size_t epoch = std::max<std::size_t>(500, m / 40);

  const Trace drift = gen_phase_elephants(n, m, 8, seed);
  const Trace uniform = gen_workload(WorkloadKind::kUniform, n, m, seed + 1);

  std::vector<LifecycleRow> life;
  for (int S : {2, 4, 8, 16})
    life.push_back(run_lifecycle_row(drift, k, S, epoch));

  std::cout << "-- lifecycle (elephants-p8, n=" << n << ", m=" << m
            << ", epoch=" << epoch << ") --\n";
  Table lt({"S0", "final S", "splits", "merges", "lifecycle cost",
            "replica reads", "cost ratio", "seconds"});
  for (const LifecycleRow& r : life)
    lt.add_row({std::to_string(r.shards0), std::to_string(r.final_shards),
                std::to_string(r.splits), std::to_string(r.merges),
                std::to_string(r.lifecycle_cost),
                std::to_string(r.replica_reads), fixed_cell(r.cost_ratio),
                fixed_cell(r.seconds, 3)});
  lt.print();
  std::cout << "\n";

  std::vector<RecoveryRow> rec;
  for (int S : {2, 4, 8, 16}) {
    rec.push_back(run_recovery_row(uniform, k, S, epoch, /*promote=*/false));
    rec.push_back(run_recovery_row(uniform, k, S, epoch, /*promote=*/true));
  }

  std::cout << "-- recovery (uniform, 3 kills, SLO " << kRecoverySloMs
            << " ms) --\n";
  Table rt({"mode", "S", "faults", "promotions", "replayed", "recovery cost",
            "total ms", "max ms", "SLO"});
  for (const RecoveryRow& r : rec)
    rt.add_row({r.mode, std::to_string(r.shards), std::to_string(r.faults),
                std::to_string(r.promotions), std::to_string(r.replayed),
                std::to_string(r.recovery_cost),
                fixed_cell(r.recovery_total_ms, 3),
                fixed_cell(r.recovery_max_ms, 3),
                r.slo_met ? "met" : "MISSED"});
  rt.print();
  std::cout << "\n";

  std::ostringstream js;
  js << "{\n  \"bench\": \"lifecycle_scaling\",\n  \"threads\": "
     << bench::bench_threads_resolved() << ",\n  \"k\": " << k
     << ",\n  \"n\": " << n << ",\n  \"requests\": " << m
     << ",\n  \"epoch_requests\": " << epoch
     << ",\n  \"recovery_slo_ms\": " << fixed_cell(kRecoverySloMs, 1)
     << ",\n  \"lifecycle\": [\n";
  for (std::size_t i = 0; i < life.size(); ++i) {
    const LifecycleRow& r = life[i];
    js << "    {\"shards0\": " << r.shards0 << ", \"final_shards\": "
       << r.final_shards << ", \"splits\": " << r.splits << ", \"merges\": "
       << r.merges << ", \"lifecycle_cost\": " << r.lifecycle_cost
       << ", \"replica_reads\": " << r.replica_reads << ", \"grand_static\": "
       << r.grand_static << ", \"grand_lifecycle\": " << r.grand_lifecycle
       << ", \"cost_ratio\": " << fixed_cell(r.cost_ratio)
       << ", \"seconds\": " << fixed_cell(r.seconds, 4) << "}"
       << (i + 1 < life.size() ? ",\n" : "\n");
  }
  js << "  ],\n  \"recovery\": [\n";
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const RecoveryRow& r = rec[i];
    js << "    {\"mode\": \"" << r.mode << "\", \"shards\": " << r.shards
       << ", \"faults\": " << r.faults << ", \"promotions\": " << r.promotions
       << ", \"replayed\": " << r.replayed << ", \"recovery_cost\": "
       << r.recovery_cost << ", \"recovery_total_ms\": "
       << fixed_cell(r.recovery_total_ms, 3) << ", \"recovery_max_ms\": "
       << fixed_cell(r.recovery_max_ms, 3) << ", \"slo_met\": "
       << (r.slo_met ? "true" : "false") << "}"
       << (i + 1 < rec.size() ? ",\n" : "\n");
  }
  js << "  ]\n}\n";
  bench::write_json_result(js.str());
  return 0;
}
